package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/load"
	"repro/internal/server"
)

// hookRegistry installs a registry override that counts every runner
// execution, restoring the real registry when the test ends.
func hookRegistry(t *testing.T, reg map[string]experiments.Runner) *int {
	t.Helper()
	executions := new(int)
	counted := make(map[string]experiments.Runner, len(reg))
	for id, runner := range reg {
		runner := runner
		counted[id] = func() (*experiments.Table, error) {
			*executions++ // engine may call concurrently; tests use -jobs 1
			return runner()
		}
	}
	testRegistry = counted
	t.Cleanup(func() { testRegistry = nil })
	return executions
}

// TestWarmCacheRunIsByteIdentical is the acceptance gate for the cache
// layer: the second run with the same -cache-dir executes zero
// experiment runners, its stdout is byte-identical to the cold run,
// and the 100% hit rate is logged — for every output format.
func TestWarmCacheRunIsByteIdentical(t *testing.T) {
	const ids = "E1,E7,E8,E11"
	for _, format := range []string{"text", "json", "csv"} {
		t.Run(format, func(t *testing.T) {
			executions := hookRegistry(t, experiments.Registry())
			dir := t.TempDir()
			args := []string{"-run", ids, "-jobs", "1", "-format", format, "-cache-dir", dir}

			var cold, coldErr bytes.Buffer
			if err := run(args, &cold, &coldErr); err != nil {
				t.Fatal(err)
			}
			if *executions != 4 {
				t.Fatalf("cold run executed %d runners, want 4", *executions)
			}
			if !strings.Contains(coldErr.String(), "cache 0/4 hits") {
				t.Fatalf("cold run stderr = %q", coldErr.String())
			}

			var warm, warmErr bytes.Buffer
			if err := run(args, &warm, &warmErr); err != nil {
				t.Fatal(err)
			}
			if *executions != 4 {
				t.Fatalf("warm run executed %d more runners, want 0", *executions-4)
			}
			if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
				t.Errorf("warm stdout differs from cold stdout")
			}
			if !strings.Contains(warmErr.String(), "cache 4/4 hits (100.0%)") {
				t.Errorf("warm run stderr = %q, want a 100.0%% hit-rate line", warmErr.String())
			}
		})
	}
}

// TestNoCacheFlag: -no-cache makes -cache-dir inert — everything
// re-executes and no hit-rate line is logged.
func TestNoCacheFlag(t *testing.T) {
	executions := hookRegistry(t, experiments.Registry())
	dir := t.TempDir()
	args := []string{"-run", "E1", "-jobs", "1", "-cache-dir", dir, "-no-cache"}
	for i := 1; i <= 2; i++ {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		if *executions != i {
			t.Fatalf("run %d: %d executions", i, *executions)
		}
		if strings.Contains(errOut.String(), "cache") {
			t.Fatalf("run %d logged cache stats with -no-cache: %q", i, errOut.String())
		}
	}
}

// TestOutputFileFlag: -o routes the encoded output to a file and
// leaves stdout empty.
func TestOutputFileFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "figures.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "E1", "-format", "json", "-o", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Fatalf("stdout not empty with -o: %q", stdout.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &results); err != nil {
		t.Fatalf("-o file is not the JSON output: %v", err)
	}
	if len(results) != 1 || results[0].ID != "E1" {
		t.Fatalf("-o file holds %+v", results)
	}
}

// TestBadRunIDPreservesOutputFile: a rejected -run id must not
// truncate an existing -o file.
func TestBadRunIDPreservesOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "figures.json")
	const precious = "previous run's tables"
	if err := os.WriteFile(path, []byte(precious), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "E99", "-o", path}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown id accepted")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != precious {
		t.Fatalf("-o file clobbered by a rejected invocation: %q", raw)
	}
}

// TestOutputFileUnwritable: a bad -o path fails before any
// experiment runs, not after the sweep.
func TestOutputFileUnwritable(t *testing.T) {
	executions := hookRegistry(t, experiments.Registry())
	err := run([]string{"-run", "E1", "-o", filepath.Join(t.TempDir(), "no", "such", "dir", "x")},
		&bytes.Buffer{}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unwritable -o path accepted")
	}
	if *executions != 0 {
		t.Fatalf("experiments ran %d times before the -o failure", *executions)
	}
}

// TestFailedExperimentExitsNonZero: a FAILED row must fail the
// process (run returns an error) while the output still encodes it.
func TestFailedExperimentExitsNonZero(t *testing.T) {
	hookRegistry(t, map[string]experiments.Runner{
		"E1": func() (*experiments.Table, error) { return nil, errors.New("synthetic failure") },
		"E2": func() (*experiments.Table, error) {
			return &experiments.Table{ID: "E2", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	})
	var out bytes.Buffer
	err := run([]string{"-run", "E1,E2", "-jobs", "1"}, &out, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "E1") {
		t.Fatalf("run returned %v, want the E1 failure", err)
	}
	if !strings.Contains(out.String(), "FAILED") || !strings.Contains(out.String(), "E2") {
		t.Fatalf("output incomplete despite failure:\n%s", out.String())
	}
}

// TestFailedExperimentNotCached: the failure is re-run (and still
// fatal) on the second invocation with the same cache directory.
func TestFailedExperimentNotCached(t *testing.T) {
	executions := hookRegistry(t, map[string]experiments.Runner{
		"E1": func() (*experiments.Table, error) { return nil, errors.New("synthetic failure") },
	})
	dir := t.TempDir()
	for i := 1; i <= 2; i++ {
		if err := run([]string{"-run", "E1", "-cache-dir", dir}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Fatalf("run %d: failure not surfaced", i)
		}
		if *executions != i {
			t.Fatalf("run %d: %d executions, want %d (failures must not be cached)", i, *executions, i)
		}
	}
}

func TestRunSubsetRequestOrder(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-run", "E8, E1", "-jobs", "2", "-format", "json"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var results []struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 2 || results[0].ID != "E8" || results[1].ID != "E1" {
		t.Fatalf("results = %+v, want E8 then E1 (request order)", results)
	}
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("%s failed: %s", r.ID, r.Error)
		}
	}
}

func TestRunConcurrentOutputIdentical(t *testing.T) {
	ids := "E1,E7,E8,E11"
	var serial, concurrent bytes.Buffer
	if err := run([]string{"-run", ids, "-jobs", "1"}, &serial, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", ids, "-jobs", "4", "-v"}, &concurrent, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), concurrent.Bytes()) {
		t.Error("-jobs 4 output differs from -jobs 1")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 16 || lines[0] != "E1" || lines[14] != "E15" {
		t.Fatalf("-list = %v", lines)
	}
	// Heavy opt-in ids follow the default sweep, tagged so nobody runs
	// them by accident.
	if lines[15] != "E16 (heavy, opt-in)" {
		t.Fatalf("heavy line = %q", lines[15])
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-format", "yaml"},
		{"-run", "E99"},
		{"-run", " , "}, // only empty entries must not mean "run everything"
	} {
		if err := run(args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// shardWorker stands up one in-process figuresd worker over a fresh
// copy of the real registry (separate from the CLI's hooked registry,
// so local and remote executions are counted apart).
func shardWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Options{Registry: experiments.Registry()}))
	t.Cleanup(ts.Close)
	return ts
}

// killAfter passes experiment requests through to the wrapped handler
// a limited number of times, then severs every later connection — a
// worker killed mid-batch, as the coordinator's client sees it.
type killAfter struct {
	served atomic.Int64
	limit  int64
	h      http.Handler
}

func (k *killAfter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/experiments/") && k.served.Add(1) > k.limit {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return
	}
	k.h.ServeHTTP(w, r)
}

// TestWorkersShardedByteIdentical is the CLI acceptance gate for the
// shard layer: -workers against a two-worker fleet emits bytes
// identical to the local run, executes nothing locally, and reports
// the fleet summary on stderr.
func TestWorkersShardedByteIdentical(t *testing.T) {
	const ids = "E1,E7,E8,E11"
	localExecs := hookRegistry(t, experiments.Registry())
	w1, w2 := shardWorker(t), shardWorker(t)
	fleet := strings.TrimPrefix(w1.URL, "http://") + "," + strings.TrimPrefix(w2.URL, "http://")

	var local bytes.Buffer
	if err := run([]string{"-run", ids, "-jobs", "1"}, &local, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if *localExecs != 4 {
		t.Fatalf("baseline executed %d runners, want 4", *localExecs)
	}

	var sharded, shardedErr bytes.Buffer
	if err := run([]string{"-run", ids, "-jobs", "1", "-workers", fleet}, &sharded, &shardedErr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), sharded.Bytes()) {
		t.Errorf("-workers output differs from local run:\n%s\nvs\n%s", sharded.String(), local.String())
	}
	if *localExecs != 4 {
		t.Errorf("sharded run executed %d runners locally, want 0", *localExecs-4)
	}
	if !strings.Contains(shardedErr.String(), "figures: shard 2/2 workers healthy, 4 remote, 0 local") {
		t.Errorf("stderr = %q, want the fleet summary line", shardedErr.String())
	}
}

// TestWorkersOneKilledMidBatch: with one worker severing connections
// after its first experiment, the batch fails over to the survivor
// and the merged output is still byte-identical to the local run.
func TestWorkersOneKilledMidBatch(t *testing.T) {
	const ids = "E1,E7,E8,E11"
	localExecs := hookRegistry(t, experiments.Registry())

	doomed := httptest.NewServer(&killAfter{
		limit: 1,
		h:     server.New(server.Options{Registry: experiments.Registry()}),
	})
	t.Cleanup(doomed.Close)
	survivor := shardWorker(t)
	fleet := strings.TrimPrefix(doomed.URL, "http://") + "," + strings.TrimPrefix(survivor.URL, "http://")

	var local bytes.Buffer
	if err := run([]string{"-run", ids, "-jobs", "1"}, &local, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var sharded, shardedErr bytes.Buffer
	if err := run([]string{"-run", ids, "-jobs", "1", "-workers", fleet}, &sharded, &shardedErr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), sharded.Bytes()) {
		t.Errorf("output differs with a worker killed mid-batch:\n%s\nvs\n%s", sharded.String(), local.String())
	}
	if *localExecs != 4 {
		t.Errorf("sharded run executed %d runners locally, want 0 (survivor must absorb)", *localExecs-4)
	}
	if !strings.Contains(shardedErr.String(), "4 remote, 0 local") {
		t.Errorf("stderr = %q, want every experiment served remotely", shardedErr.String())
	}
}

// TestWorkersDeadFleetFallsBack: with no worker reachable, -workers
// degrades to local execution with identical output and a summary
// line saying so.
func TestWorkersDeadFleetFallsBack(t *testing.T) {
	const ids = "E1,E8"
	localExecs := hookRegistry(t, experiments.Registry())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	var local bytes.Buffer
	if err := run([]string{"-run", ids, "-jobs", "1"}, &local, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var sharded, shardedErr bytes.Buffer
	if err := run([]string{"-run", ids, "-jobs", "1", "-workers", dead}, &sharded, &shardedErr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), sharded.Bytes()) {
		t.Errorf("dead-fleet output differs from local run")
	}
	if *localExecs != 4 {
		t.Errorf("executions = %d, want 4 (2 baseline + 2 fallback)", *localExecs)
	}
	if !strings.Contains(shardedErr.String(), "figures: shard 0/1 workers healthy, 0 remote, 2 local") {
		t.Errorf("stderr = %q, want the all-local summary", shardedErr.String())
	}
}

// TestLoadSubcommand is the CLI acceptance gate for the load harness:
// `figures load` against a two-worker fleet completes with zero
// errors, writes a JSON summary whose quantiles are populated, and
// prints the human summary on stderr.
func TestLoadSubcommand(t *testing.T) {
	w1, w2 := shardWorker(t), shardWorker(t)
	fleet := strings.TrimPrefix(w1.URL, "http://") + "," + strings.TrimPrefix(w2.URL, "http://")
	out := filepath.Join(t.TempDir(), "BENCH_load.json")

	var stderr bytes.Buffer
	err := run([]string{"load", "-addr", fleet, "-qps", "30", "-duration", "500ms",
		"-mix", "whole:1", "-experiments", "E1", "-o", out}, &bytes.Buffer{}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var sum load.Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("summary not valid JSON: %v\n%s", err, data)
	}
	if sum.Requests == 0 || sum.Errors != 0 {
		t.Fatalf("summary = %d requests, %d errors (%v)", sum.Requests, sum.Errors, sum.ErrorSamples)
	}
	if sum.AchievedQPS <= 0 {
		t.Errorf("achieved_qps = %v", sum.AchievedQPS)
	}
	whole := sum.Kinds[load.KindWhole]
	if whole.Requests != sum.Requests || whole.Latency.P50Millis <= 0 {
		t.Errorf("whole kind = %+v", whole)
	}
	// Both workers were driven and answered /stats with per-endpoint
	// histograms.
	if len(sum.Targets) != 2 {
		t.Fatalf("targets = %+v, want 2", sum.Targets)
	}
	for base, tgt := range sum.Targets {
		if tgt.ScrapeError != "" {
			t.Errorf("%s scrape error: %s", base, tgt.ScrapeError)
		}
		ep, ok := tgt.Endpoints[server.EndpointExperiment]
		if !ok || ep.Count == 0 || ep.P99Millis < ep.P50Millis {
			t.Errorf("%s endpoints = %+v, want experiment histogram", base, tgt.Endpoints)
		}
	}
	if !strings.Contains(stderr.String(), "qps achieved") {
		t.Errorf("stderr = %q, want the load summary line", stderr.String())
	}
}

// TestLoadSubcommandRejects: configuration mistakes fail fast with an
// error instead of generating load.
func TestLoadSubcommandRejects(t *testing.T) {
	for _, args := range [][]string{
		{"load"}, // no -addr
		{"load", "-addr", "x", "-qps", "0"},
		{"load", "-addr", "x", "-mix", "bogus:1"},
		{"load", "-addr", "x", "-duration", "0s"},
	} {
		if err := run(args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestReduceFlagByteIdenticalWithCounters pins the -reduce CLI
// surface: the reduced run's stdout is byte-identical to the
// exhaustive run in every format, and stderr carries one counter line
// per reduced experiment showing real pruning.
func TestReduceFlagByteIdenticalWithCounters(t *testing.T) {
	for _, format := range []string{"text", "json", "csv"} {
		var full, fullErr bytes.Buffer
		if err := run([]string{"-run", "E2", "-format", format}, &full, &fullErr); err != nil {
			t.Fatal(err)
		}
		var red, redErr bytes.Buffer
		if err := run([]string{"-run", "E2", "-format", format, "-reduce"}, &red, &redErr); err != nil {
			t.Fatal(err)
		}
		if red.String() != full.String() {
			t.Errorf("%s: -reduce output diverges:\n--- exhaustive ---\n%s--- reduced ---\n%s",
				format, full.String(), red.String())
		}
		if !strings.Contains(redErr.String(), "figures: reduce E2 visited=") {
			t.Errorf("%s: stderr missing counter line: %q", format, redErr.String())
		}
		if strings.Contains(fullErr.String(), "figures: reduce") {
			t.Errorf("%s: exhaustive run printed reduce counters: %q", format, fullErr.String())
		}
	}
}

// TestReduceRejectsWorkers: the memoized mode is a local engine
// choice, so combining it with a fleet run must fail fast.
func TestReduceRejectsWorkers(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-run", "E2", "-reduce", "-workers", "localhost:1"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "-reduce cannot combine with -workers") {
		t.Fatalf("err = %v, want -reduce/-workers rejection", err)
	}
	if out.Len() != 0 {
		t.Fatalf("rejected run produced output: %q", out.String())
	}
}
