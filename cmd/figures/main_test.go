package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSubsetRequestOrder(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-run", "E8, E1", "-jobs", "2", "-format", "json"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var results []struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 2 || results[0].ID != "E8" || results[1].ID != "E1" {
		t.Fatalf("results = %+v, want E8 then E1 (request order)", results)
	}
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("%s failed: %s", r.ID, r.Error)
		}
	}
}

func TestRunConcurrentOutputIdentical(t *testing.T) {
	ids := "E1,E7,E8,E11"
	var serial, concurrent bytes.Buffer
	if err := run([]string{"-run", ids, "-jobs", "1"}, &serial, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", ids, "-jobs", "4", "-v"}, &concurrent, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), concurrent.Bytes()) {
		t.Error("-jobs 4 output differs from -jobs 1")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(out.String())
	if len(lines) != 14 || lines[0] != "E1" || lines[13] != "E14" {
		t.Fatalf("-list = %v", lines)
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-format", "yaml"},
		{"-run", "E99"},
		{"-run", " , "}, // only empty entries must not mean "run everything"
	} {
		if err := run(args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
