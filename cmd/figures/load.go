package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/load"
	"repro/internal/shard"
)

// runLoad is the `figures load` subcommand: the load harness
// (internal/load) behind flags. It drives a figuresd fleet with a
// mixed whole/slice workload at a target QPS, prints a human summary
// to stderr, and writes the machine-readable summary (the
// BENCH_load.json trajectory CI uploads) to -o or stdout.
func runLoad(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figures load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "", "comma-separated figuresd targets (host:port) to drive; requests round-robin across them")
		qps         = fs.Float64("qps", 50, "target request arrival rate across all targets")
		duration    = fs.Duration("duration", 10*time.Second, "how long to generate load")
		warmup      = fs.Duration("warmup", 0, "run the same mix unmeasured first (warms caches; 0 = measure cold)")
		mixFlag     = fs.String("mix", "whole:1", "traffic mix as kind:weight pairs, e.g. whole:3,param:1,slice:1")
		exps        = fs.String("experiments", "", "comma-separated experiment ids to spread requests over, optionally weighted (E1:3); default: every registered experiment")
		paramPoints = fs.String("param-points", "", "comma-separated parameter points param-kind requests cycle through, as family:name=value pairs joined with + (e.g. E2:k=3+i0=0); default: each listed family's defaults spelled out")
		concurrency = fs.Int("concurrency", 0, "max in-flight requests (0 = 4×GOMAXPROCS)")
		sliceRanges = fs.Int("slice-ranges", 4, "prefix ranges each shardable experiment is carved into for slice fetches")
		format      = fs.String("format", "json", "whole-experiment fetch format: text, json, or csv")
		reqTimeout  = fs.Duration("request-timeout", load.DefaultRequestTimeout, "per-request limit; slower responses count as errors")
		outFile     = fs.String("o", "", "write the JSON summary to this file instead of stdout")
		verbose     = fs.Bool("v", false, "report per-request failures on stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *addr == "" {
		return fmt.Errorf("load: -addr is required")
	}
	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		return err
	}
	ids := shard.SplitList(*exps)
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	// The flag separates points with commas and name=value pairs within
	// a point with "+" (commas are taken); the harness's entry form uses
	// commas within a point, so translate here.
	var points []string
	for _, entry := range shard.SplitList(*paramPoints) {
		points = append(points, strings.ReplaceAll(entry, "+", ","))
	}

	// Create the -o file before generating any load: an unwritable
	// path must fail in milliseconds, not after the whole run.
	out := io.Writer(stdout)
	var f *os.File
	if *outFile != "" {
		f, err = os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	var logf func(format string, args ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	// SIGINT ends the run early with a partial summary instead of
	// killing the process mid-measurement.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sum, err := load.Run(ctx, load.Options{
		Targets:        shard.SplitList(*addr),
		QPS:            *qps,
		Duration:       *duration,
		Warmup:         *warmup,
		Concurrency:    *concurrency,
		RequestTimeout: *reqTimeout,
		Mix:            mix,
		Experiments:    ids,
		ParamPoints:    points,
		SliceRanges:    *sliceRanges,
		Format:         *format,
		Logf:           logf,
	})
	if err != nil {
		return err
	}

	note := ""
	if sum.Cancelled {
		note = " (cancelled early)"
	}
	fmt.Fprintf(stderr, "load: %d requests in %.1fs%s — %.1f qps achieved (target %.1f), %d errors\n",
		sum.Requests, sum.ElapsedSeconds, note, sum.AchievedQPS, sum.TargetQPS, sum.Errors)
	kinds := make([]string, 0, len(sum.Kinds))
	for kind := range sum.Kinds {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		k := sum.Kinds[kind]
		fmt.Fprintf(stderr, "load: %-5s %6d requests  p50 %8.2fms  p95 %8.2fms  p99 %8.2fms  max %8.2fms\n",
			kind, k.Requests, k.Latency.P50Millis, k.Latency.P95Millis, k.Latency.P99Millis, k.Latency.MaxMillis)
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		return err
	}
	if f != nil {
		return f.Close()
	}
	return nil
}
