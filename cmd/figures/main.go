// Command figures regenerates the data behind every figure and
// theorem-level claim of the paper (experiments E1..E14 of DESIGN.md)
// through the concurrent experiment engine, printing one table per
// experiment in index order regardless of completion order.
//
// Usage:
//
//	figures [-run E3,E7] [-jobs N] [-format text|json|csv] [-timeout D] [-list] [-v]
//
// The output of -jobs N is byte-identical to -jobs 1 for every format:
// parallelism changes wall-clock time only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs  = fs.String("run", "", "comma-separated experiment ids to run (default: all)")
		jobs    = fs.Int("jobs", 0, "experiments run concurrently (0 = GOMAXPROCS)")
		format  = fs.String("format", "text", "output format: text, json, or csv")
		timeout = fs.Duration("timeout", 0, "per-experiment wall-clock limit (0 = none)")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		verbose = fs.Bool("v", false, "report per-experiment timing on stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}

	encode, ok := experiments.Encoders[*format]
	if !ok {
		known := make([]string, 0, len(experiments.Encoders))
		for name := range experiments.Encoders {
			known = append(known, name)
		}
		sort.Strings(known)
		return fmt.Errorf("unknown format %q (have %s)", *format, strings.Join(known, ", "))
	}

	var ids []string
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return fmt.Errorf("-run %q names no experiments", *runIDs)
		}
	}

	start := time.Now()
	results, err := experiments.Run(context.Background(), experiments.Options{
		IDs:     ids,
		Jobs:    *jobs,
		Timeout: *timeout,
	})
	if err != nil {
		return err
	}
	if *verbose {
		for _, r := range results {
			status := "ok"
			if r.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(stderr, "figures: %-4s %8.3fs  %s\n", r.ID, r.Duration.Seconds(), status)
		}
		fmt.Fprintf(stderr, "figures: total %.3fs\n", time.Since(start).Seconds())
	}
	if err := encode(stdout, results); err != nil {
		return err
	}
	return experiments.FirstError(results)
}
