// Command figures regenerates the data behind every figure and
// theorem-level claim of the paper (experiments E1..E15 of DESIGN.md)
// through the concurrent experiment engine, printing one table per
// experiment in index order regardless of completion order.
//
// Usage:
//
//	figures [-run E3,E7] [-jobs N] [-format text|json|csv] [-timeout D]
//	        [-cache-dir DIR] [-no-cache] [-workers HOSTS] [-reduce]
//	        [-param k=7,i0=0] [-o FILE] [-list] [-v]
//	figures load -addr HOSTS [-qps N] [-duration D] [-warmup D]
//	        [-mix whole:3,slice:1] [-experiments E1,E2,E15] [-o FILE]
//	figures trace -addr HOSTS [-timeout D] REQUEST_ID
//
// The load subcommand is the load harness (internal/load): it drives
// a figuresd fleet with a mixed whole-experiment / prefix-slice
// workload at a target QPS and emits a machine-readable latency
// summary (BENCH_load.json) — achieved QPS, per-kind p50/p95/p99
// client-side, per-endpoint distributions and cache hit rates scraped
// from each worker's /stats.
//
// The output of -jobs N is byte-identical to -jobs 1 for every format:
// parallelism changes wall-clock time only. With -cache-dir, results
// persist in a content-addressed on-disk store (internal/cache): a
// repeated run with the same directory executes nothing and emits the
// same bytes, and the store is shared with a figuresd daemon pointed
// at the same directory. With -workers host1:port,host2:port, the run
// fans out across a figuresd fleet through the shard coordinator
// (internal/shard) and the merged output is still byte-identical to a
// local run — -jobs then governs only the local fallback, because
// remote workers own their own concurrency. Prefix-shardable
// experiments (E2's exhaustive Algorithm 1 sweep, E15's exhaustive
// Algorithm 2 validation) go further when at least two workers are
// healthy: their own exploration space is carved into
// schedule-prefix ranges split across the fleet and the
// order-insensitive aggregates are merged, so a single theorem-scale
// space finishes faster than any one box while emitting the same
// bytes. Combining -workers with -cache-dir makes the run the top of
// a read-through cache hierarchy: each range is consulted in the
// store before it is dispatched and stored back after, so a repeated
// sharded run of the same space executes zero explorations anywhere.
//
// -reduce runs the reduced-capable experiments (E2's and E15's
// exhaustive schedule sweeps, plus the opt-in heavy E16 — the k=5
// Algorithm 1 sweep that only exists in reduced form) through the
// canonical-state memoized explorer instead of replaying every
// interleaving: the output bytes are identical in every format, and
// one stderr line per reduced experiment reports the explorer's
// counters (states visited, subtrees pruned, replays performed vs
// executions accounted, worker fan-out, memo entries shared across
// prefix ranges). -jobs doubles as the explorer's worker count: jobs
// above one split the carved prefix ranges across goroutines over one
// shared memo table, same bytes at every level. It is a local engine
// mode, so it cannot combine with -workers — sharded ranges keep
// their exhaustive byte-identical contract.
//
// -param evaluates one experiment family at one point of its
// parameter space instead of the fixed registry point: -run must name
// exactly one parameterized family (E2 or E15), and the value is a
// comma-separated name=value list validated against the family's
// schema ("k=3", "c=3,i1=2"); omitted parameters take their defaults,
// and the default point emits bytes identical to the fixed
// experiment's. Parameterized points ride every existing mode: they
// cache under per-point content-addressed keys with -cache-dir, shard
// across a fleet with -workers (carved at the requested point), and
// journal with -trace. -reduce stays pinned to the fixed registry
// points, so it cannot combine with -param.
//
// -trace turns on per-request span journaling (internal/trace) for
// sharded runs: every run gets a request ID, the coordinator journals
// each carve/selection/fetch/retry/cache decision under it, the same
// ID travels to the workers in the Repro-Request-ID header, and the
// run ends with one `figures: trace <id> run <exp>` line per request
// plus the coordinator's timeline on stderr. The trace subcommand
// completes the picture after the fact: it fetches that ID's span
// from each listed worker's /trace/{id} endpoint and renders the
// merged timeline with per-range duration bars, worker assignments,
// cache outcomes, and retry counts.
// The process exits non-zero when any experiment in the run fails,
// even though the failed row is still encoded in the output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/shard"
	"repro/internal/trace"
)

// testRegistry overrides the experiment registry in tests (to count
// runner executions); nil outside of tests.
var testRegistry map[string]experiments.Runner

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	// Subcommand dispatch: `figures load` is the load harness; bare
	// `figures` keeps its original flag surface (no subcommand needed
	// for the common path).
	if len(args) > 0 && args[0] == "load" {
		return runLoad(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "trace" {
		return runTrace(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs   = fs.String("run", "", "comma-separated experiment ids to run (default: all)")
		jobs     = fs.Int("jobs", 0, "experiments run concurrently (0 = GOMAXPROCS)")
		format   = fs.String("format", "text", "output format: text, json, or csv")
		timeout  = fs.Duration("timeout", 0, "per-experiment wall-clock limit (0 = none)")
		cacheDir = fs.String("cache-dir", "", "cache experiment results in this directory")
		noCache  = fs.Bool("no-cache", false, "ignore -cache-dir and run everything fresh")
		workers  = fs.String("workers", "", "comma-separated figuresd workers (host:port) to fan the run out to; unreachable workers fall back to local execution, which -jobs governs")
		traceOn  = fs.Bool("trace", false, "journal per-request spans on sharded runs and print each request's trace id and timeline on stderr (requires -workers)")
		reduce   = fs.Bool("reduce", false, "run reduced-capable experiments through the canonical-state memoized explorer (byte-identical output, counters on stderr; incompatible with -workers)")
		param    = fs.String("param", "", "evaluate one family at a parameter point (\"k=7,i0=0\", omitted parameters default); requires -run naming exactly one parameterized family")
		outFile  = fs.String("o", "", "write output to this file instead of stdout")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		verbose  = fs.Bool("v", false, "report per-experiment timing on stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		// Heavy experiments run only when named in -run; the default
		// sweep skips them.
		for _, id := range experiments.HeavyIDs() {
			fmt.Fprintf(stdout, "%s (heavy, opt-in)\n", id)
		}
		return nil
	}

	encode, err := experiments.LookupEncoder(*format)
	if err != nil {
		return err
	}

	// Local runs have no remote decisions to journal; a silent no-op
	// -trace would read as "nothing happened", so reject it instead.
	if *traceOn && *workers == "" {
		return fmt.Errorf("-trace requires -workers (spans journal the coordinator's fleet decisions)")
	}
	// The memoized mode is a local engine choice; sharded ranges keep
	// the exhaustive byte-identical contract, so a silently exhaustive
	// -reduce -workers run would misreport what it measured.
	if *reduce && *workers != "" {
		return fmt.Errorf("-reduce cannot combine with -workers (reduction is a local engine mode)")
	}

	var ids []string
	if *runIDs != "" {
		ids = shard.SplitList(*runIDs)
		if len(ids) == 0 {
			return fmt.Errorf("-run %q names no experiments", *runIDs)
		}
	}

	// A parameter point names one family and one point of its space;
	// validation happens here so a bad point fails before any file or
	// fleet is touched.
	var fam experiments.Family
	var ps experiments.ParamSet
	if *param != "" {
		if *reduce {
			return fmt.Errorf("-param cannot combine with -reduce (reduction is pinned to the fixed registry points)")
		}
		if len(ids) != 1 {
			return fmt.Errorf("-param requires -run naming exactly one parameterized family")
		}
		families := experiments.FamiliesFor(testRegistry)
		var ok bool
		if fam, ok = families[ids[0]]; !ok {
			return fmt.Errorf("experiment %q takes no parameters", ids[0])
		}
		var err error
		if ps, err = experiments.ParseParamList(fam, *param); err != nil {
			return err
		}
	}

	opts := experiments.Options{
		IDs:      ids,
		Jobs:     *jobs,
		Timeout:  *timeout,
		Registry: testRegistry,
		Reduce:   *reduce,
	}
	// Validate the ids before touching the -o file below: a typo'd
	// -run must fail cleanly, not truncate an existing output file.
	reg := testRegistry
	if reg == nil {
		reg = experiments.Registry()
	}
	for _, id := range ids {
		if _, ok := reg[id]; ok {
			continue
		}
		// Heavy opt-in ids (E16) resolve only against the real registry,
		// mirroring the engine's HeavyFor rule.
		if _, ok := experiments.HeavyFor(testRegistry)[id]; !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
	}
	if *cacheDir != "" && !*noCache {
		store, err := cache.Open(*cacheDir, cache.Options{})
		if err != nil {
			return err
		}
		opts.Cache = store
	}

	// Create the -o file before running anything: an unwritable path
	// must fail in milliseconds, not after the full experiment sweep.
	out := io.Writer(stdout)
	var f *os.File
	if *outFile != "" {
		var err error
		f, err = os.Create(*outFile)
		if err != nil {
			return err
		}
		out = f
	}

	start := time.Now()
	var results []experiments.Result
	switch {
	case *param != "" && *workers != "":
		results, err = runShardedParam(shard.SplitList(*workers), fam, ps, opts, stderr, *verbose, *traceOn)
	case *param != "":
		results = []experiments.Result{experiments.RunParam(context.Background(), fam, ps, opts)}
	case *workers != "":
		results, err = runSharded(shard.SplitList(*workers), ids, opts, stderr, *verbose, *traceOn)
	default:
		results, err = experiments.Run(context.Background(), opts)
	}
	if err != nil {
		if f != nil {
			f.Close()
		}
		return err
	}
	if *verbose {
		for _, r := range results {
			status := "ok"
			switch {
			case r.Err != nil:
				status = "FAILED"
			case r.Cached:
				status = "cached"
			}
			fmt.Fprintf(stderr, "figures: %-4s %8.3fs  %s\n", r.ID, r.Duration.Seconds(), status)
		}
		fmt.Fprintf(stderr, "figures: total %.3fs\n", time.Since(start).Seconds())
	}
	// One grep-friendly counter line per reduced experiment (CI keys on
	// the "figures: reduce" prefix): the proof the run went through the
	// memoized explorer, and how much it saved.
	if *reduce {
		for _, r := range results {
			if !r.Reduced {
				continue
			}
			fmt.Fprintf(stderr, "figures: reduce %s visited=%d pruned=%d replays=%d executions=%d workers=%d shared=%d\n",
				r.ID, r.Memo.StatesVisited, r.Memo.StatesPruned, r.Memo.Replays, r.Memo.Executions,
				r.Memo.Workers, r.Memo.StatesShared)
		}
	}
	// The hit-rate line counts this process's own store: local-run
	// hits, or — sharded — the coordinator's front-cache hits (worker
	// and slice-level warmth shows on the shard summary lines and the
	// workers' /stats instead).
	if opts.Cache != nil {
		hits := 0
		for _, r := range results {
			if r.Cached {
				hits++
			}
		}
		fmt.Fprintf(stderr, "figures: cache %d/%d hits (%.1f%%)\n",
			hits, len(results), 100*float64(hits)/float64(len(results)))
	}

	if err := encode(out, results); err != nil {
		if f != nil {
			f.Close()
		}
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
	}
	return experiments.FirstError(results)
}

// runSharded fans the run out across a figuresd fleet via the shard
// coordinator, reporting the fleet summary on stderr. opts carries the
// local-fallback engine configuration (registry, cache, timeout, jobs).
// With traceOn, a span journal is threaded into the coordinator and
// each request's ID and timeline are reported after the run.
func runSharded(fleet, ids []string, opts experiments.Options, stderr io.Writer, verbose, traceOn bool) ([]experiments.Result, error) {
	return shardRun(fleet, opts, stderr, verbose, traceOn,
		func(ctx context.Context, coord *shard.Coordinator) ([]experiments.Result, error) {
			return coord.Run(ctx, ids)
		})
}

// runShardedParam evaluates one family at one parameter point across
// the fleet — the -param -workers path — with the same coordinator
// wiring, trace reporting, and shard summary as runSharded.
func runShardedParam(fleet []string, fam experiments.Family, ps experiments.ParamSet, opts experiments.Options, stderr io.Writer, verbose, traceOn bool) ([]experiments.Result, error) {
	return shardRun(fleet, opts, stderr, verbose, traceOn,
		func(ctx context.Context, coord *shard.Coordinator) ([]experiments.Result, error) {
			res, err := coord.RunParam(ctx, fam.ID, ps)
			if err != nil {
				return nil, err
			}
			return []experiments.Result{res}, nil
		})
}

// shardRun builds the coordinator, runs do over it, and reports traces
// and the fleet summary — the shared frame of every sharded mode.
func shardRun(fleet []string, opts experiments.Options, stderr io.Writer, verbose, traceOn bool,
	do func(context.Context, *shard.Coordinator) ([]experiments.Result, error)) ([]experiments.Result, error) {
	var logf func(format string, args ...any)
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	// A -timeout above the remote-fetch default must reach the fleet
	// too, or long experiments could never be served remotely; the
	// margin covers transfer and queueing on the worker.
	var reqTimeout time.Duration
	if opts.Timeout > 0 {
		reqTimeout = opts.Timeout + 30*time.Second
	}
	var journal *trace.Journal
	if traceOn {
		journal = trace.NewJournal(0, 0)
	}
	coord, err := shard.New(shard.Options{
		Workers:        fleet,
		RequestTimeout: reqTimeout,
		Local:          opts,
		Logf:           logf,
		Journal:        journal,
	})
	if err != nil {
		return nil, err
	}
	results, err := do(context.Background(), coord)
	if err != nil {
		return nil, err
	}
	if journal != nil {
		// One line per request in grep-friendly form (CI keys on the
		// "figures: trace <id>" prefix), then the coordinator's own
		// timeline; `figures trace -addr <fleet> <id>` adds the
		// workers' halves of the same span afterwards.
		for _, tr := range journal.Traces() {
			fmt.Fprintf(stderr, "figures: trace %s %s\n", tr.ID, tr.What)
			renderTimeline(stderr, []sourcedTrace{{tr: tr}})
		}
	}
	st := coord.Stats()
	fmt.Fprintf(stderr, "figures: shard %d/%d workers healthy, %d remote, %d local\n",
		st.WorkersHealthy, st.WorkersTotal, st.Remote, st.Local)
	if st.PrefixSharded > 0 {
		fmt.Fprintf(stderr, "figures: shard %d prefix-sharded (%d ranges remote, %d local, %d cached, %d reassigned)\n",
			st.PrefixSharded, st.PrefixRangesRemote, st.PrefixRangesLocal, st.PrefixRangesCached, st.RangesReassigned)
	}
	if verbose {
		for _, w := range st.Workers {
			if w.Fetches == 0 {
				continue
			}
			fmt.Fprintf(stderr, "figures: shard worker %s: %d fetches, %d errors, p50 %.1fms p95 %.1fms\n",
				w.Addr, w.Fetches, w.Errors, w.Latency.P50Millis, w.Latency.P95Millis)
		}
	}
	return results, nil
}
