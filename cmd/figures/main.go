// Command figures regenerates the data behind every figure and
// theorem-level claim of the paper in one run (experiments E1..E12 of
// DESIGN.md), printing one table per experiment.
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	reg := experiments.Registry()
	for _, id := range experiments.IDs() {
		tab, err := reg[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tab.Format())
	}
	return nil
}
