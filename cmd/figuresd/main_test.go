package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
)

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nonsense"},
		{"-addr", "not a listen address"},
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestServeLifecycle boots the daemon's serve loop on an ephemeral
// port, exercises the API through real TCP, and checks that
// cancellation shuts it down cleanly within the grace window.
func TestServeLifecycle(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	reg := map[string]experiments.Runner{
		"E1": func() (*experiments.Table, error) {
			executions.Add(1)
			return &experiments.Table{ID: "E1", Title: "synthetic",
				Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
	handler := server.New(server.Options{Registry: reg})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, l, handler, 2*time.Second) }()

	base := fmt.Sprintf("http://%s", l.Addr())
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if status, body := get("/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", status, body)
	}
	if status, body := get("/experiments/E1"); status != http.StatusOK || !strings.Contains(body, "synthetic") {
		t.Fatalf("/experiments/E1 = %d %q", status, body)
	}
	if status, _ := get("/experiments"); status != http.StatusOK {
		t.Fatalf("/experiments = %d", status)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("executions = %d", n)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down within the grace window")
	}
}
