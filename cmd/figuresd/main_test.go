package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/trace"
)

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nonsense"},
		{"-addr", "not a listen address"},
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestServeLifecycle boots the daemon's serve loop on an ephemeral
// port, exercises the API through real TCP, and checks that
// cancellation shuts it down cleanly within the grace window.
func TestServeLifecycle(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	reg := map[string]experiments.Runner{
		"E1": func() (*experiments.Table, error) {
			executions.Add(1)
			return &experiments.Table{ID: "E1", Title: "synthetic",
				Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
	handler := server.New(server.Options{Registry: reg})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, l, handler, 2*time.Second) }()

	base := fmt.Sprintf("http://%s", l.Addr())
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if status, body := get("/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", status, body)
	}
	if status, body := get("/experiments/E1"); status != http.StatusOK || !strings.Contains(body, "synthetic") {
		t.Fatalf("/experiments/E1 = %d %q", status, body)
	}
	if status, _ := get("/experiments"); status != http.StatusOK {
		t.Fatalf("/experiments = %d", status)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("executions = %d", n)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down within the grace window")
	}
}

// syntheticRegistry builds a one-experiment registry with an
// execution counter.
func syntheticRegistry(id string, executions *atomic.Int64) map[string]experiments.Runner {
	return map[string]experiments.Runner{
		id: func() (*experiments.Table, error) {
			executions.Add(1)
			return &experiments.Table{ID: id, Title: "synthetic " + id,
				Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
}

// TestPeersFrontsFleet is the figuresd -peers smoke path: a front
// daemon with peers delegates experiment execution to the fleet, its
// own registry never runs, and /stats answers on the front door.
func TestPeersFrontsFleet(t *testing.T) {
	var peerExecs, frontExecs atomic.Int64
	peer1 := httptest.NewServer(server.New(server.Options{Registry: syntheticRegistry("E1", &peerExecs)}))
	defer peer1.Close()
	peer2 := httptest.NewServer(server.New(server.Options{Registry: syntheticRegistry("E1", &peerExecs)}))
	defer peer2.Close()

	testRegistry = syntheticRegistry("E1", &frontExecs)
	defer func() { testRegistry = nil }()

	peers := strings.TrimPrefix(peer1.URL, "http://") + "," + strings.TrimPrefix(peer2.URL, "http://")
	handler, err := newHandler("", peers, 0, false, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(handler)
	defer front.Close()

	resp, err := http.Get(front.URL + "/experiments/E1?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "synthetic E1") {
		t.Fatalf("front response = %d %q", resp.StatusCode, body)
	}
	if n := peerExecs.Load(); n != 1 {
		t.Errorf("fleet executed %d runners, want 1", n)
	}
	if n := frontExecs.Load(); n != 0 {
		t.Errorf("front executed %d runners locally, want 0 (peers own execution)", n)
	}

	stats, err := http.Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsBody, err := io.ReadAll(stats.Body)
	stats.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.StatusCode != http.StatusOK || !strings.Contains(string(statsBody), `"in_flight"`) {
		t.Fatalf("front /stats = %d %q", stats.StatusCode, statsBody)
	}
}

// TestPeersDeadFleetFallsBackLocal: a front daemon whose peers are
// all unreachable still serves — experiments run through its own
// engine.
func TestPeersDeadFleetFallsBackLocal(t *testing.T) {
	var frontExecs atomic.Int64
	testRegistry = syntheticRegistry("E1", &frontExecs)
	defer func() { testRegistry = nil }()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	handler, err := newHandler("", dead, 0, false, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(handler)
	defer front.Close()

	resp, err := http.Get(front.URL + "/experiments/E1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "synthetic E1") {
		t.Fatalf("fallback response = %d %q", resp.StatusCode, body)
	}
	if n := frontExecs.Load(); n != 1 {
		t.Errorf("front executed %d runners, want 1 (local fallback)", n)
	}
}

// TestFrontDoorTraceSpansBothLayers: one front-door request leaves a
// single span holding the serving layer's request/done events and the
// shard coordinator's fleet decisions, retrievable via /trace/{id} on
// the front door — the shared-journal wiring of newHandler.
func TestFrontDoorTraceSpansBothLayers(t *testing.T) {
	var peerExecs, frontExecs atomic.Int64
	peer := httptest.NewServer(server.New(server.Options{Registry: syntheticRegistry("E1", &peerExecs)}))
	defer peer.Close()

	testRegistry = syntheticRegistry("E1", &frontExecs)
	defer func() { testRegistry = nil }()

	handler, err := newHandler("", strings.TrimPrefix(peer.URL, "http://"), 0, false, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(handler)
	defer front.Close()

	resp, err := http.Get(front.URL + "/experiments/E1?format=json")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	reqID := resp.Header.Get(trace.Header)
	if reqID == "" {
		t.Fatal("front door echoed no request ID")
	}

	tr, err := http.Get(front.URL + "/trace/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	span, err := io.ReadAll(tr.Body)
	tr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("/trace/%s = %d %q", reqID, tr.StatusCode, span)
	}
	for _, kind := range []string{trace.KindRequest, trace.KindWorkerSelected, trace.KindFetch, trace.KindDone} {
		if !strings.Contains(string(span), `"`+kind+`"`) {
			t.Errorf("span missing %s event:\n%s", kind, span)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the
// daemon's log output while the test reads it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDebugAddrServesPprof boots the daemon with -debug-addr on an
// ephemeral port, reads the bound addresses from the log, and checks
// that the profiling index answers there — and only there, not on the
// API listener.
func TestDebugAddrServesPprof(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var logs syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0", "-grace", "2s"}, &logs)
	}()

	extract := func(marker string) string {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			for _, line := range strings.Split(logs.String(), "\n") {
				if i := strings.Index(line, marker); i >= 0 {
					rest := line[i+len(marker):]
					return strings.TrimSuffix(strings.Fields(rest)[0], "/debug/pprof/")
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("no %q line in logs:\n%s", marker, logs.String())
		return ""
	}
	debugURL := extract("pprof on ")
	apiURL := extract("serving on ")

	resp, err := http.Get(debugURL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof index = %d %q", resp.StatusCode, body)
	}
	if resp, err := http.Get(apiURL + "/debug/pprof/"); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Error("API listener serves /debug/pprof/ — profiling leaked onto the experiment port")
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
