// Command figuresd is the experiment-serving daemon: the figures
// pipeline behind HTTP instead of a one-shot CLI. It mounts
// internal/server over the E1..E14 registry, optionally backed by the
// on-disk result cache, and shuts down gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	figuresd [-addr host:port] [-cache-dir DIR] [-timeout D] [-grace D]
//
// Endpoints:
//
//	GET /experiments                              the experiment index
//	GET /experiments/{id}?format=text|json|csv    one experiment's table
//	GET /healthz                                  liveness probe
//
// Concurrent requests for the same cold experiment are deduplicated to
// a single execution; with -cache-dir, results persist across restarts
// and are shared with cmd/figures runs using the same directory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/server"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "figuresd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("figuresd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "localhost:8093", "listen address")
		cacheDir = fs.String("cache-dir", "", "result cache directory (empty = no cache)")
		timeout  = fs.Duration("timeout", server.DefaultTimeout, "per-experiment execution limit (0 = none)")
		grace    = fs.Duration("grace", 5*time.Second, "graceful-shutdown window")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	logger := log.New(stderr, "", log.LstdFlags)
	var store experiments.Cache
	if *cacheDir != "" {
		s, err := cache.Open(*cacheDir, cache.Options{})
		if err != nil {
			return err
		}
		store = s
	}
	// The flag follows cmd/figures' convention (0 = no limit); the
	// server API spells that -1, with 0 meaning "use the default".
	execTimeout := *timeout
	if execTimeout == 0 {
		execTimeout = -1
	}
	srv := server.New(server.Options{
		Cache:   store,
		Timeout: execTimeout,
		Logf:    logger.Printf,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	cacheNote := "off"
	if *cacheDir != "" {
		cacheNote = *cacheDir
	}
	logger.Printf("figuresd: serving on http://%s (cache %s, timeout %v)", l.Addr(), cacheNote, *timeout)
	return serve(ctx, l, srv, *grace)
}

// serve runs the HTTP server on l until ctx is cancelled or a signal
// arrives, then drains in-flight requests for up to grace before
// returning. A clean shutdown returns nil.
func serve(ctx context.Context, l net.Listener, handler http.Handler, grace time.Duration) error {
	hs := &http.Server{
		Handler: handler,
		// Slowloris guard; response writes are unbounded because an
		// experiment execution legitimately takes minutes.
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err // Serve never returns nil
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			hs.Close()
			return err
		}
		return nil
	}
}
