// Command figuresd is the experiment-serving daemon: the figures
// pipeline behind HTTP instead of a one-shot CLI. It mounts
// internal/server over the E1..E15 registry, optionally backed by the
// on-disk result cache, and shuts down gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	figuresd [-addr host:port] [-cache-dir DIR] [-timeout D] [-grace D]
//	         [-peers host1:port,host2:port] [-debug-addr host:port]
//	         [-reduce]
//
// With -reduce, reduced-capable experiments (E2, E15, and the opt-in
// heavy E16) execute through the canonical-state memoized explorer
// wherever this process runs the engine — directly, or as the local
// fallback of a -peers fleet — fanned out across GOMAXPROCS workers
// over one shared memo table. The served bytes are identical; the
// explorer's accumulated counters (states_shared and workers included)
// appear in the /stats exploration section. Prefix slices are
// unaffected: sharded ranges keep their exhaustive contract.
//
// Endpoints:
//
//	GET /experiments                              the experiment index
//	GET /experiments/{id}?format=text|json|csv    one experiment's table
//	GET /healthz                                  liveness probe
//	GET /stats                                    operational counters
//	GET /metrics                                  Prometheus text exposition
//	GET /trace/{id}                               one request's span journal
//
// Concurrent requests for the same cold experiment are deduplicated to
// a single execution; with -cache-dir, results persist across restarts
// and are shared with cmd/figures runs using the same directory. The
// daemon also serves prefix slices of shardable experiments
// (GET /experiments/{id}?prefixes=..., the intra-experiment sharding
// protocol of internal/shard), so any figuresd instance can compute
// its share of a split exploration space — and with -cache-dir those
// slices are artifacts too, served from and stored into the same
// content-addressed store as whole results. With -peers, this daemon
// becomes the front door of a figuresd fleet: experiment execution
// fans out to the peers through the shard coordinator — shardable
// experiments are carved into prefix ranges across the fleet when at
// least two peers are healthy, each range read through the front
// cache before it is dispatched and stored back after, so the fleet
// is a read-through cache hierarchy — and falls back to running
// locally when the fleet cannot serve.
//
// Every request carries a Repro-Request-ID (minted here when the
// client sent none) under which the serving layer — and, with -peers,
// the shard coordinator sharing the same journal — records its span;
// GET /trace/{id} plays it back. -debug-addr serves net/http/pprof on
// a second listener so profiling never shares a port (or an exposure
// decision) with the experiment API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only by -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
)

// testRegistry overrides the experiment registry in tests; nil
// outside of tests (the real E1..E15 registry is served).
var testRegistry map[string]experiments.Runner

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "figuresd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("figuresd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "localhost:8093", "listen address")
		cacheDir = fs.String("cache-dir", "", "result cache directory (empty = no cache)")
		timeout  = fs.Duration("timeout", server.DefaultTimeout, "per-experiment execution limit (0 = none)")
		grace    = fs.Duration("grace", 5*time.Second, "graceful-shutdown window")
		peers    = fs.String("peers", "", "comma-separated figuresd peers (host:port) to fan experiment execution out to; this daemon fronts the fleet and falls back to local execution")
		debug    = fs.String("debug-addr", "", "serve net/http/pprof on this second listener (empty = off)")
		reduce   = fs.Bool("reduce", false, "run reduced-capable experiments through the canonical-state memoized explorer (byte-identical responses, counters on /stats)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	logger := log.New(stderr, "", log.LstdFlags)
	srv, err := newHandler(*cacheDir, *peers, *timeout, *reduce, logger.Printf)
	if err != nil {
		return err
	}

	if *debug != "" {
		// pprof stays on its own listener: net/http/pprof registers on
		// the default mux, which the experiment API never serves, so
		// profiling exposure is a separate bind decision entirely.
		dl, err := net.Listen("tcp", *debug)
		if err != nil {
			return err
		}
		defer dl.Close()
		go func() {
			if err := http.Serve(dl, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Printf("figuresd: pprof server: %v", err)
			}
		}()
		logger.Printf("figuresd: pprof on http://%s/debug/pprof/", dl.Addr())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	cacheNote := "off"
	if *cacheDir != "" {
		cacheNote = *cacheDir
	}
	logger.Printf("figuresd: serving on http://%s (cache %s, timeout %v)", l.Addr(), cacheNote, *timeout)
	return serve(ctx, l, srv, *grace)
}

// newHandler assembles the daemon's HTTP handler: the serving layer
// over the in-process engine, optionally cache-backed, and — with
// peers — over a shard coordinator instead, so this daemon fronts a
// fleet. timeout follows the flag convention (0 = no limit).
func newHandler(cacheDir, peers string, timeout time.Duration, reduce bool, logf func(format string, args ...any)) (http.Handler, error) {
	var store experiments.Cache
	if cacheDir != "" {
		s, err := cache.Open(cacheDir, cache.Options{})
		if err != nil {
			return nil, err
		}
		store = s
	}
	// The flag follows cmd/figures' convention (0 = no limit); the
	// server API spells that -1, with 0 meaning "use the default".
	execTimeout := timeout
	if execTimeout == 0 {
		execTimeout = -1
	}
	// One journal spans both layers: the serving edge mints (or adopts)
	// the request ID, the coordinator journals its fleet decisions
	// under the same ID, and /trace/{id} plays back the whole span.
	journal := trace.NewJournal(0, 0)
	opts := server.Options{
		Registry: testRegistry,
		Cache:    store,
		Timeout:  execTimeout,
		Reduce:   reduce,
		Logf:     logf,
		Journal:  journal,
	}
	if peers != "" {
		// A -timeout above the remote-fetch default must reach the
		// fleet too; the margin covers transfer and queueing.
		var reqTimeout time.Duration
		if timeout > 0 {
			reqTimeout = timeout + 30*time.Second
		}
		coord, err := shard.New(shard.Options{
			Workers:        shard.SplitList(peers),
			RequestTimeout: reqTimeout,
			Local: experiments.Options{
				Registry: testRegistry,
				Cache:    store,
				Timeout:  timeout,
				Reduce:   reduce,
			},
			Logf:    logf,
			Journal: journal,
		})
		if err != nil {
			return nil, err
		}
		st := coord.Stats()
		logf("figuresd: fronting %d/%d peers (local fallback ready)", st.WorkersHealthy, st.WorkersTotal)
		opts.Backend = coord.RunOne
		opts.ParamBackend = coord.RunParam
	}
	return server.New(opts), nil
}

// serve runs the HTTP server on l until ctx is cancelled or a signal
// arrives, then drains in-flight requests for up to grace before
// returning. A clean shutdown returns nil.
func serve(ctx context.Context, l net.Listener, handler http.Handler, grace time.Duration) error {
	hs := &http.Server{
		Handler: handler,
		// Slowloris guard; response writes are unbounded because an
		// experiment execution legitimately takes minutes.
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err // Serve never returns nil
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			hs.Close()
			return err
		}
		return nil
	}
}
