// Command boundedreg runs the reproduction's experiments by id and prints
// the paper-style tables. With no arguments it lists the available
// experiments; `-run all` runs everything (same as cmd/figures).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "boundedreg:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("boundedreg", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments")
	runID := fs.String("run", "", "experiment id (E1..E12), comma-separated, or 'all'")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := experiments.Registry()
	if *list || *runID == "" {
		fmt.Println("experiments (run with -run <id>):")
		for _, id := range experiments.IDs() {
			tab, err := reg[id]()
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Printf("  %-4s %s\n", id, tab.Title)
		}
		return nil
	}

	var ids []string
	if *runID == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			id = strings.TrimSpace(id)
			if _, ok := reg[id]; !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		tab, err := reg[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tab.Format())
	}
	return nil
}
