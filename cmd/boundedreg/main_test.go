package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "E1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCommaSeparated(t *testing.T) {
	if err := run([]string{"-run", "E1, E8"}); err != nil {
		t.Fatal(err)
	}
}
