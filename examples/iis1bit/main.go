// IIS with 1-bit registers: Algorithm 4 (Theorem 1.4) simulates the
// full-information iterated-collect protocol — here solving binary
// 1/4-agreement — writing a single bit per iteration memory.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/iis"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	n, k := 2, 2
	u := iis.NewUniverse(n, k, iis.BinaryInputVectors(n), iis.CollectOutcomes(n))
	iters := iis.Alg4Iterations(u)
	fmt.Printf("IC full-information protocol: n=%d, k=%d rounds, %d reachable views\n", n, k, u.NumViews())
	fmt.Printf("Algorithm 4 simulation: N = %d one-bit immediate-snapshot iterations\n\n", iters)

	rng := rand.New(rand.NewSource(2))
	for _, inputs := range [][]int{{0, 1}, {1, 0}, {1, 1}} {
		schedule := iis.RandomSchedule(n, iters, rng)
		res, err := iis.RunAlg4(u, inputs, schedule)
		if err != nil {
			return err
		}
		fmt.Printf("inputs %v:", inputs)
		for i, id := range res.Final {
			num, den := u.Estimate(id)
			fmt.Printf("  p%d decides %d/%d", i, num, den)
		}
		sn, sd := u.EstimateSpread(res.Final)
		fmt.Printf("   (spread %d/%d ≤ 1/%d, config IC-reachable)\n", sn, sd, 1<<k)
	}

	fmt.Println("\nevery simulated configuration is validated against the")
	fmt.Println("enumerated IC protocol complex (Lemma 7.1) — 1-bit registers")
	fmt.Println("suffice in the iterated model, unlike the non-iterated one.")
	return nil
}
