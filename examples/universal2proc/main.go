// Universal construction: Algorithm 2 (Theorem 1.2) solves arbitrary
// 2-process wait-free solvable tasks with 3-bit registers — and the
// Biran-Moran-Zaks solvability check correctly rejects consensus.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/task"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A solvable task: discretized 1/6-agreement.
	eps := task.DiscreteEpsAgreement(6)
	fmt.Printf("task %s over 3-bit registers:\n", eps.Name)
	for _, input := range eps.Inputs {
		sys, err := core.SolveTask2Proc(eps, input, sched.NewRandom(7))
		if err != nil {
			return err
		}
		if err := task.CheckRun(eps, input, sys); err != nil {
			return err
		}
		fmt.Printf("  input %v → output (%d, %d)\n", input, sys.Outs[0], sys.Outs[1])
	}

	// A solvable task with a cyclic output graph.
	cyc := task.CycleAgreement(8)
	fmt.Printf("\ntask %s:\n", cyc.Name)
	for _, input := range cyc.Inputs {
		sys, err := core.SolveTask2Proc(cyc, input, sched.NewRandom(3))
		if err != nil {
			return err
		}
		if err := task.CheckRun(cyc, input, sys); err != nil {
			return err
		}
		fmt.Printf("  input %v → output (%d, %d)\n", input, sys.Outs[0], sys.Outs[1])
	}

	// Consensus fails the solvability characterization (Lemma 2.1 via
	// Lemma 5.7): the universal construction must refuse it.
	if _, err := core.SolveTask2Proc(task.BinaryConsensus(), task.Pair{0, 1}, sched.NewRandom(0)); err == nil {
		return fmt.Errorf("consensus unexpectedly accepted")
	} else {
		fmt.Printf("\nconsensus rejected as expected: %v\n", err)
	}
	return nil
}
