// Impossibility walkthrough: the constructive core of Theorem 1.1. With
// 1-bit registers, the execution graph of the 2-process ε-agreement
// protocol connects the two solo decisions by a path (else consensus
// would be solvable), yet all executions collapse onto at most four
// distinguishable register contents — so as ε shrinks, a late third
// process is forced arbitrarily far from some already-decided output.
package main

import (
	"fmt"
	"log"

	"repro/internal/consensus"
	"repro/internal/impossibility"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Step 1: the execution graph is connected (Lemma 2.1's shadow).
	k := 3
	g, err := impossibility.BuildAlg1Graph(k, 0)
	if err != nil {
		return err
	}
	path := g.Path()
	fmt.Printf("execution graph of Algorithm 1 (k=%d, inputs 0,1): %d executions\n", k, g.Executions)
	fmt.Printf("solo-to-solo path (%d edges):", len(path)-1)
	for _, v := range path {
		fmt.Printf(" p%d:%d/%d", v.Pid, v.Num, g.Den)
	}
	fmt.Println()

	// Step 2: the pigeonhole. All executions leave one of ≤ 4 register
	// states; within one state, outputs far apart coexist.
	for _, kk := range []int{2, 4, 6} {
		c, err := impossibility.WorstCollision(kk, 0)
		if err != nil {
			return err
		}
		fmt.Printf("k=%d (ε=1/%d): memory %v carries %d output pairs, gap %d·ε\n",
			kk, 2*kk+1, c.Mem, len(c.Pairs), c.Gap())
	}

	// Step 3: the counting table of Proposition 4.1.
	rows, err := impossibility.CountingTable(3, 2, 4)
	if err != nil {
		return err
	}
	fmt.Println("\nProp 4.1 thresholds (n=3, t=2): with s-bit registers, ε < 1/k is unreachable:")
	for _, r := range rows {
		fmt.Printf("  s=%d bits → %4d memory states → k = %d\n", r.Bits, r.States, r.KThreshold)
	}

	// Step 4: and the reason the graph must be connected — rounding
	// ε-agreement to solve consensus fails on a concrete schedule.
	v, err := consensus.FindRoundingViolation(2)
	if err != nil {
		return err
	}
	fmt.Printf("\nconsensus via rounding refuted: schedule %v gives decisions %v (%s)\n",
		v.Schedule, v.Outs, v.Reason)
	return nil
}
