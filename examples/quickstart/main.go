// Quickstart: two processes solve binary ε-agreement with 1-bit registers
// (the paper's Algorithm 1, Theorem 1.2's engine), under a lockstep
// scheduler, a random adversary, and a crash adversary.
package main

import (
	"fmt"
	"log"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/sched"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	k := 10 // precision ε = 1/(2k+1) = 1/21
	inputs := [2]uint64{0, 1}

	fmt.Printf("binary ε-agreement, ε = 1/%d, inputs %v, 1-bit registers\n\n",
		agreement.Alg1Den(k), inputs)

	// Lockstep: the two processes run in strict alternation.
	run, err := core.EpsAgreement1Bit(k, inputs, &sched.RoundRobin{})
	if err != nil {
		return err
	}
	report("lockstep", run)

	// Random asynchrony.
	run, err = core.EpsAgreement1Bit(k, inputs, sched.NewRandom(42))
	if err != nil {
		return err
	}
	report("random adversary", run)

	// Wait-freedom: process 1 crashes after 3 steps; process 0 still
	// decides.
	run, err = core.EpsAgreement1Bit(k, inputs,
		sched.NewCrashAt(&sched.RoundRobin{}, map[int]int{1: 3}))
	if err != nil {
		return err
	}
	report("crash after 3 steps", run)

	// Every run is validated against the task specification.
	if err := run.Check(k); err != nil {
		return err
	}
	fmt.Println("\nall runs satisfy validity and ε-agreement")
	return nil
}

func report(name string, run *agreement.Alg1Run) {
	fmt.Printf("%-22s", name+":")
	for i := 0; i < 2; i++ {
		if run.Decided[i] {
			fmt.Printf("  p%d → %s (%.4f) in %d steps", i, run.Outs[i], run.Outs[i].Float(), run.Result.Steps[i])
		} else {
			fmt.Printf("  p%d crashed", i)
		}
	}
	fmt.Println()
}
