// Minority pipeline: the Theorem 1.3 compilation chain. The same
// t-resilient ε-agreement algorithm runs on four register stores: plain
// unbounded shared memory (A), ABD over the complete message-passing
// network (A′), ABD over the (t+1)-connected t-augmented ring (A″), and
// finally over registers of exactly 3(t+1) bits whose ring links run the
// alternating-bit protocol (B).
package main

import (
	"fmt"
	"log"

	"repro/internal/msgpass"
	"repro/internal/sched"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inputs := []int64{0, 1, 1}
	n, t, rounds := 3, 1, 3
	fmt.Printf("n=%d t=%d binary ε-agreement, ε = 1/%d, inputs %v\n\n", n, t, 1<<rounds, inputs)

	for _, stage := range []msgpass.PipelineStage{
		msgpass.StageDirect,
		msgpass.StageABDComplete,
		msgpass.StageABDRing,
		msgpass.StageBitRing,
	} {
		pr, err := msgpass.RunPipeline(msgpass.PipelineConfig{
			Stage: stage, N: n, T: t, Rounds: rounds,
			Inputs: inputs, Seed: 5, Scheduler: sched.NewRandom(9),
		})
		if err != nil {
			return err
		}
		if err := pr.Check(inputs, rounds); err != nil {
			return fmt.Errorf("stage %v: %w", stage, err)
		}
		bits := "unbounded"
		if pr.RegisterBits > 0 {
			bits = fmt.Sprintf("%d-bit", pr.RegisterBits)
		}
		fmt.Printf("%-18s registers=%-9s steps=%-7d msgs=%-5d link-bits=%-6d outputs:",
			stage.String(), bits, pr.Res.TotalSteps, pr.MsgsSent, pr.BitsDelivered)
		for i, d := range pr.Outs {
			if pr.Decided[i] {
				fmt.Printf(" %s", d)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nall stages decide within ε — registers of 3(t+1) bits are universal for t < n/2")
	return nil
}
