package repro

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/iis"
	"repro/internal/impossibility"
	"repro/internal/labelling"
	"repro/internal/memory"
	"repro/internal/msgpass"
	"repro/internal/sched"
	"repro/internal/task"
)

// Each benchmark regenerates one experiment of the DESIGN.md index
// (E1..E12); custom metrics report the series the paper's figures plot.

// BenchmarkFig1Classification (E1): the Figure 1 verdict grid.
func BenchmarkFig1Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 2; n <= 9; n++ {
			for t := 1; t < n; t++ {
				if _, err := core.Classify(core.Model{N: n, T: t}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkAlg1Enumeration (E2): exhaustive interleavings of Algorithm 1
// at k = 3 (Figure 2's object, one size down to keep iterations cheap).
func BenchmarkAlg1Enumeration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := agreement.ExploreAlg1(3, [2]uint64{0, 1}, func(ar *agreement.Alg1Run) {})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(runs), "executions")
	}
}

// BenchmarkAlg1Steps (E2/E10): Algorithm 1 step complexity grows
// linearly in 1/ε.
func BenchmarkAlg1Steps(b *testing.B) {
	for _, k := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				ar, err := agreement.RunAlg1(k, [2]uint64{0, 1}, &sched.RoundRobin{})
				if err != nil {
					b.Fatal(err)
				}
				steps = ar.Result.Steps[0]
			}
			b.ReportMetric(float64(steps), "steps/proc")
		})
	}
}

// BenchmarkAlg2Universal (E3): one run of the universal construction on
// 3-bit registers.
func BenchmarkAlg2Universal(b *testing.B) {
	tk := task.DiscreteEpsAgreement(4)
	plan, err := tk.BuildPlan(tk.Outputs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, _, err := task.RunAlg2(plan, task.Pair{0, 1}, sched.NewRandom(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := task.CheckRun(tk, task.Pair{0, 1}, sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPigeonholeBound (E4): the register-content collision search.
func BenchmarkPigeonholeBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := impossibility.WorstCollision(3, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(c.Gap()), "gap")
	}
}

// BenchmarkPipeline (E5): the four Theorem 1.3 stages.
func BenchmarkPipeline(b *testing.B) {
	stages := []struct {
		stage  msgpass.PipelineStage
		n, t   int
		rounds int
	}{
		{msgpass.StageDirect, 5, 2, 3},
		{msgpass.StageABDComplete, 5, 2, 2},
		{msgpass.StageABDRing, 5, 2, 2},
		{msgpass.StageBitRing, 3, 1, 1},
	}
	for _, s := range stages {
		b.Run(s.stage.String(), func(b *testing.B) {
			inputs := make([]int64, s.n)
			for i := range inputs {
				inputs[i] = int64(i % 2)
			}
			var steps int
			for i := 0; i < b.N; i++ {
				pr, err := msgpass.RunPipeline(msgpass.PipelineConfig{
					Stage: s.stage, N: s.n, T: s.t, Rounds: s.rounds,
					Inputs: inputs, Seed: int64(i), Scheduler: sched.NewRandom(int64(i)),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := pr.Check(inputs, s.rounds); err != nil {
					b.Fatal(err)
				}
				steps = pr.Res.TotalSteps
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkIIS1Bit (E6): Algorithm 4 over a random IIS schedule.
func BenchmarkIIS1Bit(b *testing.B) {
	u := iis.NewUniverse(2, 2, iis.BinaryInputVectors(2), iis.CollectOutcomes(2))
	iters := iis.Alg4Iterations(u)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iis.RunAlg4(u, []int{0, 1}, iis.RandomSchedule(2, iters, rng)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(iters), "iterations")
}

// BenchmarkISComplexGrowth (E7): enumerating the 3^r-execution complex.
func BenchmarkISComplexGrowth(b *testing.B) {
	for _, r := range []int{4, 6} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var configs int
			for i := 0; i < b.N; i++ {
				u := iis.NewUniverse(2, r, [][]int{{0, 1}}, iis.ISOutcomes(2))
				configs = len(u.Configs[r])
			}
			b.ReportMetric(float64(configs), "configs")
		})
	}
}

// BenchmarkLabelCounts (E8): Lemma 8.1's 3^r+1 label enumeration.
func BenchmarkLabelCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		labels, err := labelling.AllLabels(5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(labels)), "labels")
	}
}

// BenchmarkAlg6Executions (E9): the simulated-complex value map (Ω(2^R)
// path vertices from constant-size registers).
func BenchmarkAlg6Executions(b *testing.B) {
	for _, r := range []int{6, 8, 10} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				vm, err := labelling.BuildValueMap(labelling.Alg6Config{Delta: 2, R: r})
				if err != nil {
					b.Fatal(err)
				}
				l = vm.Len
			}
			b.ReportMetric(float64(l), "path-vertices")
		})
	}
}

// BenchmarkAgreementStepComplexity (E10): the Θ(1/ε) vs O(log 1/ε)
// separation at matched precision.
func BenchmarkAgreementStepComplexity(b *testing.B) {
	for _, r := range []int{6, 8, 10} {
		fa, err := labelling.NewFastAgreement(r)
		if err != nil {
			b.Fatal(err)
		}
		k := (fa.EpsDen() - 1) / 2
		b.Run(fmt.Sprintf("fast/R=%d", r), func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				fr, err := fa.Run([2]uint64{0, 1}, &sched.RoundRobin{})
				if err != nil {
					b.Fatal(err)
				}
				steps = fr.Result.Steps[0]
			}
			b.ReportMetric(float64(steps), "steps/proc")
		})
		b.Run(fmt.Sprintf("alg1/eps=1over%d", fa.EpsDen()), func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				ar, err := agreement.RunAlg1(k, [2]uint64{0, 1}, &sched.RoundRobin{})
				if err != nil {
					b.Fatal(err)
				}
				steps = ar.Result.Steps[0]
			}
			b.ReportMetric(float64(steps), "steps/proc")
		})
	}
}

// BenchmarkRingRouting (E11): broadcast + quorum over the t-augmented
// ring (one ABD write).
func BenchmarkRingRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pr, err := msgpass.RunPipeline(msgpass.PipelineConfig{
			Stage: msgpass.StageABDRing, N: 7, T: 3, Rounds: 1,
			Inputs: []int64{0, 1, 0, 1, 0, 1, 0}, Seed: int64(i),
			Scheduler: sched.NewRandom(int64(i)),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pr.MsgsSent), "msgs")
	}
}

// BenchmarkMidpointConvergence (E12): one-round complexes and contraction.
func BenchmarkMidpointConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u := iis.NewUniverse(3, 2, iis.BinaryInputVectors(3), iis.CollectOutcomes(3))
		num, den := u.MaxRoundSpread(2)
		if num*4 > den {
			b.Fatal("contraction violated")
		}
	}
}

// BenchmarkAlg2FastSpeedup (E13): classic vs accelerated universal
// construction at growing path lengths.
func BenchmarkAlg2FastSpeedup(b *testing.B) {
	for _, l := range []int{16, 40, 80} {
		tk := task.DiscreteEpsAgreement(l)
		plan, err := tk.BuildPlan(tk.Outputs)
		if err != nil {
			b.Fatal(err)
		}
		fa, err := task.FastAgreementFor(plan)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("classic/L=%d", plan.L), func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				_, res, err := task.RunAlg2(plan, task.Pair{0, 1}, &sched.RoundRobin{})
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Steps[0]
			}
			b.ReportMetric(float64(steps), "steps/proc")
		})
		b.Run(fmt.Sprintf("fast/L=%d", plan.L), func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				sys := task.NewAlg2FastSystem(plan, fa)
				res, err := sched.Run(sched.Config{Scheduler: &sched.RoundRobin{}}, []sched.ProcFunc{
					sys.Proc(0, 0), sys.Proc(1, 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Steps[0]
			}
			b.ReportMetric(float64(steps), "steps/proc")
		})
	}
}

// BenchmarkMidpointSharedMemory (E14): n-process ε-agreement over
// IS-from-read/write objects.
func BenchmarkMidpointSharedMemory(b *testing.B) {
	inputs := []uint64{0, 1, 1, 0}
	for i := 0; i < b.N; i++ {
		mr, err := agreement.RunMidpoint(4, 3, inputs, sched.NewRandom(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := mr.Check(3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlg6DeltaAblation: the Δ trade-off — longer simulated paths
// for wider registers.
func BenchmarkAlg6DeltaAblation(b *testing.B) {
	for _, delta := range []int{2, 3} {
		cfg := labelling.Alg6Config{Delta: delta, R: 7}
		b.Run(fmt.Sprintf("delta=%d/bits=%d", delta, cfg.RegisterBits()), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				vm, err := labelling.BuildValueMap(cfg)
				if err != nil {
					b.Fatal(err)
				}
				l = vm.Len
			}
			b.ReportMetric(float64(l), "path-vertices")
		})
	}
}

// BenchmarkExperimentTables regenerates the cheap experiment tables
// end to end (the expensive ones have dedicated benchmarks above).
func BenchmarkExperimentTables(b *testing.B) {
	reg := experiments.Registry()
	for _, id := range []string{"E1", "E7", "E8", "E11", "E12"} {
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reg[id](); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweep runs the full E1–E14 sweep through the experiment
// engine: jobs=1 is the serial baseline, jobs=NumCPU the concurrent
// run. On 4+ cores the concurrent arm is ≥2x faster wall-clock while
// emitting byte-identical tables (TestEngineConcurrentMatchesSerial);
// on a single core the two arms coincide. Compare with
//
//	go test -run='^$' -bench=BenchmarkSweep -benchtime=3x .
func BenchmarkSweep(b *testing.B) {
	jobCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		jobCounts = append(jobCounts, n)
	}
	for _, jobs := range jobCounts {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := experiments.Run(context.Background(), experiments.Options{Jobs: jobs})
				if err != nil {
					b.Fatal(err)
				}
				if err := experiments.FirstError(results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExploreParallel measures the bounded fan-out over disjoint
// schedule prefixes on the Algorithm 1 interleaving space (the hot loop
// of E2/E4 and the impossibility package).
func BenchmarkExploreParallel(b *testing.B) {
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var runs int
			for i := 0; i < b.N; i++ {
				r, err := agreement.ExploreAlg1Parallel(4, [2]uint64{0, 1}, workers, func(*agreement.Alg1Run) {})
				if err != nil {
					b.Fatal(err)
				}
				runs = r
			}
			b.ReportMetric(float64(runs), "executions")
		})
	}
}

// BenchmarkExploreMemoized measures the canonical-state memoized
// exploration of the same Algorithm 1 space BenchmarkExploreParallel
// sweeps exhaustively: the reported executions metric matches the
// exhaustive run count while replays stays a fraction of it — the
// reduction BENCH_explore.json tracks over time.
func BenchmarkExploreMemoized(b *testing.B) {
	var stats sched.MemoStats
	for i := 0; i < b.N; i++ {
		_, s, err := agreement.ExploreAlg1Memo(4, [2]uint64{0, 1}, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		stats = s
	}
	b.ReportMetric(float64(stats.Executions), "executions")
	b.ReportMetric(float64(stats.Replays), "replays")
	b.ReportMetric(float64(stats.StatesVisited), "states_visited")
	b.ReportMetric(float64(stats.StatesPruned), "states_pruned")
}

// BenchmarkExploreMemoParallel measures the sharded concurrent memo
// table over the same Algorithm 1 space BenchmarkExploreMemoized walks
// serially: workers=1 is the serial reference (the parallel entry point
// falls through to ExploreMemo), higher counts split the prefix ranges
// across goroutines over one shared table. The states_shared metric
// counts memo entries reused across ranges — the cross-worker savings
// the shared table buys over independent per-range memos. On a
// single-core host the ns/op lines coincide; the speedup column in
// BENCH_explore.json reads workers=8 against workers=1 either way.
func BenchmarkExploreMemoParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var stats sched.MemoStats
			for i := 0; i < b.N; i++ {
				_, s, err := agreement.ExploreAlg1MemoParallel(4, [2]uint64{0, 1}, workers, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.Executions), "executions")
			b.ReportMetric(float64(stats.Replays), "replays")
			b.ReportMetric(float64(stats.StatesShared), "states_shared")
		})
	}
}

// BenchmarkSchedHandshake measures the raw cost of one scheduler-gated
// step (the simulator's unit of work).
func BenchmarkSchedHandshake(b *testing.B) {
	procs := []sched.ProcFunc{func(p *sched.Proc) error {
		for i := 0; i < 1000; i++ {
			p.Step()
		}
		return nil
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(sched.Config{Scheduler: sched.Lowest{}}, procs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1000, "steps/op")
}

// BenchmarkMemorySnapshot measures the atomic snapshot primitive.
func BenchmarkMemorySnapshot(b *testing.B) {
	m := memory.New(8, 0)
	procs := []sched.ProcFunc{func(p *sched.Proc) error {
		pm := memory.Bind(p, m)
		for i := 0; i < 100; i++ {
			_ = pm.Snapshot()
		}
		return nil
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(sched.Config{Scheduler: sched.Lowest{}}, procs); err != nil {
			b.Fatal(err)
		}
	}
}
